package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// readReport loads an earlier BENCH_*.json for use as a baseline.
func readReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// oneShot reports whether a result is a single-iteration timing of a
// sub-millisecond benchmark: at -benchtime 1x such a number is mostly
// harness overhead, not the op, so it cannot be gated on.
func oneShot(r Result) bool { return r.Iterations <= 1 && r.NsPerOp < 1e6 }

// compareBaseline renders a per-benchmark speedup table of cur against
// base and returns the names of benchmarks whose ns/op regressed beyond
// tol (fractional: 0.5 = 50% slower than baseline). Benchmarks present
// on only one side are listed — NEW when the baseline predates them,
// RETIRED when they've since been dropped — but never count as
// regressions, so adding or retiring a benchmark doesn't fail the gate;
// nor do comparisons where either side is a one-shot sub-millisecond
// timing (run with BENCHTIME=2s BENCHCOUNT=6 to gate the
// micro-benchmarks too).
func compareBaseline(base, cur *Report, tol float64) (string, []string) {
	old := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		old[r.Name] = r
	}
	seen := make(map[string]bool, len(cur.Benchmarks))
	width := len("benchmark")
	for _, r := range cur.Benchmarks {
		if len(r.Name) > width {
			width = len(r.Name)
		}
	}
	for _, r := range base.Benchmarks {
		if len(r.Name) > width {
			width = len(r.Name)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "vs baseline %s (%s):\n", base.Date, base.Commit)
	fmt.Fprintf(&b, "%-*s  %14s  %14s  %8s\n",
		width, "benchmark", "base ns/op", "ns/op", "speedup")
	var regressed []string
	for _, r := range cur.Benchmarks {
		seen[r.Name] = true
		o, ok := old[r.Name]
		if !ok {
			// No baseline entry: the benchmark postdates the baseline
			// file. Report it so the run is visible, but a NEW
			// benchmark can neither regress nor be dropped.
			fmt.Fprintf(&b, "%-*s  %14s  %14.1f  %8s\n",
				width, r.Name, "-", r.NsPerOp, "NEW")
			continue
		}
		if o.NsPerOp <= 0 || r.NsPerOp <= 0 {
			fmt.Fprintf(&b, "%-*s  %14.1f  %14.1f  %8s  (no timing, not gated)\n",
				width, r.Name, o.NsPerOp, r.NsPerOp, "-")
			continue
		}
		speedup := o.NsPerOp / r.NsPerOp
		mark := ""
		switch {
		case oneShot(o) || oneShot(r):
			mark = "  (1-shot, not gated)"
		case r.NsPerOp > o.NsPerOp*(1+tol):
			mark = "  REGRESSED"
			regressed = append(regressed, r.Name)
		}
		fmt.Fprintf(&b, "%-*s  %14.1f  %14.1f  %7.2fx%s\n",
			width, r.Name, o.NsPerOp, r.NsPerOp, speedup, mark)
	}
	for _, o := range base.Benchmarks {
		if !seen[o.Name] {
			fmt.Fprintf(&b, "%-*s  %14.1f  %14s  %8s\n",
				width, o.Name, o.NsPerOp, "-", "RETIRED")
		}
	}
	return b.String(), regressed
}
