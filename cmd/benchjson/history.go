package main

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// historyLabel derives a column label from a report file name:
// BENCH_2026-08-06_replay.json -> "2026-08-06_replay". Files that don't
// follow the convention fall back to their base name.
func historyLabel(path string) string {
	base := filepath.Base(path)
	base = strings.TrimSuffix(base, ".json")
	return strings.TrimPrefix(base, "BENCH_")
}

// fmtNs renders a ns/op figure in the largest unit that keeps three-ish
// significant digits; ASCII units only so column widths stay byte-true.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fus", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// historyEntry pairs one report with its column label for sorting.
type historyEntry struct {
	label string
	rep   *Report
}

// historyTable renders the per-benchmark performance trajectory across a
// series of committed BENCH_*.json reports: one column per report
// (sorted by report date, then label), one row per benchmark (sorted by
// name), each cell the ns/op at that point in time, and a trailing
// speedup of the newest measurement against the benchmark's first
// appearance — the long-run answer to "is this artifact getting cheaper
// to rebuild?". Benchmarks absent from a report show "-"; a benchmark
// must appear in at least one report to get a row.
func historyTable(entries []historyEntry) string {
	sort.SliceStable(entries, func(a, b int) bool {
		if entries[a].rep.Date != entries[b].rep.Date {
			return entries[a].rep.Date < entries[b].rep.Date
		}
		return entries[a].label < entries[b].label
	})

	// name -> column -> ns/op (0 = absent). Within one report the last
	// entry for a name wins, matching compareBaseline's map semantics.
	cells := map[string][]float64{}
	var names []string
	for ci, e := range entries {
		for _, r := range e.rep.Benchmarks {
			row, ok := cells[r.Name]
			if !ok {
				row = make([]float64, len(entries))
				cells[r.Name] = row
				names = append(names, r.Name)
			}
			row[ci] = r.NsPerOp
		}
	}
	sort.Strings(names)

	nameW := len("benchmark")
	for _, n := range names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	colW := len("speedup")
	for _, e := range entries {
		if len(e.label) > colW {
			colW = len(e.label)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "trajectory across %d report(s):\n", len(entries))
	fmt.Fprintf(&b, "%-*s", nameW, "benchmark")
	for _, e := range entries {
		fmt.Fprintf(&b, "  %*s", colW, e.label)
	}
	fmt.Fprintf(&b, "  %*s\n", colW, "speedup")
	for _, n := range names {
		row := cells[n]
		fmt.Fprintf(&b, "%-*s", nameW, n)
		first, last := 0.0, 0.0
		for _, ns := range row {
			if ns > 0 {
				if first == 0 {
					first = ns
				}
				last = ns
			}
		}
		for _, ns := range row {
			if ns == 0 {
				fmt.Fprintf(&b, "  %*s", colW, "-")
			} else {
				fmt.Fprintf(&b, "  %*s", colW, fmtNs(ns))
			}
		}
		// Speedup is first-vs-newest; a single appearance has no
		// trajectory yet.
		if first > 0 && last > 0 && first != last {
			fmt.Fprintf(&b, "  %*s\n", colW, fmt.Sprintf("%.2fx", first/last))
		} else {
			fmt.Fprintf(&b, "  %*s\n", colW, "-")
		}
	}
	return b.String()
}

// runHistory loads the given report files (default: BENCH_*.json in the
// current directory) and prints their trajectory table.
func runHistory(paths []string) error {
	if len(paths) == 0 {
		var err error
		paths, err = filepath.Glob("BENCH_*.json")
		if err != nil {
			return err
		}
	}
	if len(paths) == 0 {
		return fmt.Errorf("no BENCH_*.json reports found")
	}
	entries := make([]historyEntry, 0, len(paths))
	for _, p := range paths {
		rep, err := readReport(p)
		if err != nil {
			return err
		}
		entries = append(entries, historyEntry{label: historyLabel(p), rep: rep})
	}
	fmt.Print(historyTable(entries))
	return nil
}
