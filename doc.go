// Package repro is the module root of a from-scratch Go reproduction of
// "PInTE: Probabilistic Induction of Theft Evictions" (Gomes, Chen &
// Hempstead, IISWC 2022).
//
// The public API lives in repro/pinte; command-line tools in cmd/; the
// per-table/figure experiment harness in internal/expt (driven by
// cmd/pintereport and by the benchmarks in bench_test.go at this root).
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results.
package repro
