# Build/test entry points. `make ci` is the gate every PR must pass:
# formatting, vet, a full build, the full test suite, and a race-checked
# run of the concurrent execution stack (internal/sim + internal/runner).

GO ?= go

.PHONY: ci fmt vet build test race bench

ci: fmt vet build test race

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/... ./internal/runner/...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
