# Build/test entry points. `make ci` is the gate every PR must pass:
# formatting, vet, a full build, the full test suite (which includes the
# telemetry-enabled golden determinism check and the AllocsPerRun == 0
# collector guard), a race-checked run of the concurrent execution
# stack (internal/sim + internal/runner + internal/telemetry +
# internal/replay + internal/fault), the chaos suite (fault matrix +
# crash-recovery property tests, race-enabled — including the SIGKILL
# restart-and-resume property test against a real pinted process), and
# the race-enabled pinted service smoke (serve-check).

GO ?= go

# `make bench` knobs: raise BENCHTIME/BENCHCOUNT for stable numbers
# (e.g. BENCHTIME=2s BENCHCOUNT=6 for a benchstat-worthy sample).
BENCHTIME ?= 1x
BENCHCOUNT ?= 1
BENCHOUT ?= BENCH_$(shell date +%F).json
# Baseline for the regression gate: the newest committed perf-trajectory
# entry that isn't the file this run writes. BENCHTOL is deliberately
# generous — single-shot wall-clock numbers can swing 2x against a
# quiet-window baseline on a shared host; tighten it when running with
# BENCHTIME=2s BENCHCOUNT=6.
BENCHBASE ?= $(shell git ls-files 'BENCH_*.json' | grep -v "^$(BENCHOUT)$$" | sort | tail -1)
BENCHTOL ?= 1.0

.PHONY: ci fmt vet build test race replay-check sample-check chaos serve-check store-check bench bench-smoke

ci: fmt vet build test race chaos replay-check sample-check serve-check store-check bench-smoke

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/sim/... ./internal/runner/... \
		./internal/telemetry/... ./internal/replay/... ./internal/fault/...

# Chaos suite: the fault-injection matrix, the randomized crash-recovery
# property test and the durability tests, race-enabled. Asserts every
# injected fault yields a clean typed error or a correct degraded result
# — never a corrupt store or a silently wrong answer.
chaos:
	$(GO) test -race -count=1 \
		-run 'Chaos|Watchdog|Backoff|Compact|Corrupt|Evict|SourceSite|FuzzLoadJournal|TestFault|TestParse|TestApply|TornTail' \
		./internal/fault/... ./internal/runner/... ./internal/replay/... \
		./internal/server/... ./internal/store/...

# Service smoke gate, race-enabled: the pinted lifecycle/admission/
# fairness/drain suite, including two concurrent tiny campaigns from
# different tenants completing fairly and a drain-checkpoint-resume
# round trip.
serve-check:
	$(GO) test -race -count=1 -run 'TestServe|TestQuota|TestSweepSpec' \
		./internal/server/...

# Replay-cache and fan-out determinism gate: cached runs must be
# byte-identical to generated runs and to the committed goldens, and
# fan-out groups (shared-decode lockstep execution) must be
# byte-identical to the sequential per-run path at both the simulator
# and campaign level.
replay-check:
	$(GO) test -count=1 -run 'TestReplayEquivalence|TestReplayMatchesGoldens|TestFanout' \
		./internal/sim ./internal/runner

# Phase-aware sampling gate, race-enabled: the clusterer's determinism
# and selection tests, the sampled executor's full-window byte-identity
# anchor, the phased-workload accuracy check (>= 5x fewer detailed
# instructions with IPC / LLC MPKI / realized P_Induce inside the
# plan's stated error bounds against the full-ROI run), the O(1) replay
# seek, and the campaign-level savings and fallback tests.
sample-check:
	$(GO) test -race -count=1 -run 'TestSample|TestAnalyze|TestReplayerSkip|TestChaosSampled' \
		./internal/phase ./internal/sim ./internal/runner ./internal/replay

# Result-store gate, race-enabled: the content-addressed store's full
# suite (durability, fingerprint isolation, GC, single-flight) plus its
# campaign/service integration tests; the committed simulator
# fingerprint must match the tree (a drifted simulator with a stale
# fingerprint would poison every shared store); the store-verify
# integrity gate replays the golden matrix live; and the warm-restart
# property — a store-backed rerun is served without simulating — is
# exercised via one benchmark iteration (the bench fails unless
# FromStore == 12 with byte-identical results).
store-check:
	$(GO) test -race -count=1 ./internal/store/...
	$(GO) test -race -count=1 -run 'TestStore|TestMemoCounters|TestRunnerStore|TestServeDuplicateTenants|TestServeStoreAcrossRestart' \
		./internal/runner ./internal/expt ./internal/server
	$(GO) run ./cmd/simfp -root . -check
	$(GO) run ./cmd/pintetrace store-verify -goldens internal/sim/testdata
	$(GO) test -bench 'BenchmarkSweepWarmRestart' -benchtime 1x -run '^$$' .

# One pass over every benchmark as a compile-and-run smoke; keeps the
# hot-path benchmarks building and non-panicking without the cost of a
# full measurement.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' \
		. ./internal/cache ./internal/trace ./internal/rng ./internal/replay

# Full benchmark run, archived as a perf-trajectory entry. Raw output
# streams to the terminal; the parsed results land in $(BENCHOUT). When
# an earlier committed BENCH_*.json exists, benchjson also prints a
# speedup table against it and fails the target on a regression beyond
# BENCHTOL.
bench:
	$(GO) test -bench . -benchmem -benchtime $(BENCHTIME) -count $(BENCHCOUNT) \
		-run '^$$' . ./internal/cache ./internal/trace ./internal/rng ./internal/replay | \
		$(GO) run ./cmd/benchjson -out $(BENCHOUT) \
		-commit $$(git rev-parse --short HEAD 2>/dev/null || echo unknown) \
		$(if $(BENCHBASE),-baseline $(BENCHBASE) -tolerance $(BENCHTOL))
