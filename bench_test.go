package repro_test

// One benchmark per paper table/figure: each regenerates its artifact at
// the "tiny" experiment scale per iteration, so `go test -bench=.`
// exercises the full reproduction pipeline and reports how long each
// artifact takes to rebuild. Ablation benches cover the design choices
// DESIGN.md stars.
//
// Run a single artifact:  go test -bench=BenchmarkTable2 -benchtime=1x
// Full sweep:             go test -bench=. -benchmem

import (
	"context"
	"encoding/json"
	"testing"

	"repro/internal/expt"
	"repro/internal/replay"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// benchScale keeps per-iteration cost bounded; the memo cache is NOT
// shared across iterations (each gets a fresh runner) so timings reflect
// real simulation work.
func benchScale() expt.Scale {
	s := expt.Tiny()
	s.Warmup = 30_000
	s.ROI = 100_000
	s.SampleEvery = 20_000
	s.Reruns = 2
	s.Sweep = []float64{0.05, 0.5}
	s.Workloads = []string{"453.povray", "450.soplex", "470.lbm"}
	return s
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runner := expt.NewRunner(benchScale())
		tables, err := expt.RunExperiment(id, runner)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }

// BenchmarkSimulatorThroughput measures raw single-core simulation speed
// (instructions per second ≈ 1/(ns per instruction × 1e-9)); the figure
// behind Table I's cost claims.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	const roi = 200_000
	for i := 0; i < b.N; i++ {
		_, err := sim.Run(sim.Config{
			Workload:     "403.gcc",
			WarmupInstrs: 1,
			ROIInstrs:    roi,
			SampleEvery:  roi,
			Seed:         uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(roi), "instrs/op")
}

// BenchmarkIsolationRun measures the end-to-end cost of the baseline
// isolation runs (Table I's "isolation" row) across the bench workload
// set — the single-core hot path (trace generation, core model, full
// hierarchy walk) with no engine or co-runner attached.
func BenchmarkIsolationRun(b *testing.B) {
	workloads := benchScale().Workloads
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, wl := range workloads {
			_, err := sim.Run(sim.Config{
				Workload:     wl,
				WarmupInstrs: 20_000,
				ROIInstrs:    100_000,
				SampleEvery:  100_000,
				Seed:         1,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkModeCosts compares per-mode simulation cost: the 2nd-Trace
// row of Table I is expected to run ≈2× the isolation row, PInTE ≈1×.
func BenchmarkModeCosts(b *testing.B) {
	modes := []struct {
		name string
		cfg  sim.Config
	}{
		{"Isolation", sim.Config{Workload: "433.milc"}},
		{"PInTE", sim.Config{Workload: "433.milc", Mode: sim.PInTE, PInduce: 0.3}},
		{"SecondTrace", sim.Config{Workload: "433.milc", Mode: sim.SecondTrace, Adversary: "470.lbm"}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			cfg := m.cfg
			cfg.WarmupInstrs = 20_000
			cfg.ROIInstrs = 100_000
			cfg.SampleEvery = 100_000
			cfg.Seed = 1
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPolicyHook measures PInTE injection under each LLC
// replacement policy — the policy-agnostic hook ablation (DESIGN.md ★).
func BenchmarkAblationPolicyHook(b *testing.B) {
	for _, pol := range []string{"lru", "plru", "nmru", "rrip"} {
		b.Run(pol, func(b *testing.B) {
			cfg := sim.Config{
				Workload:     "450.soplex",
				Mode:         sim.PInTE,
				PInduce:      0.5,
				WarmupInstrs: 20_000,
				ROIInstrs:    100_000,
				SampleEvery:  100_000,
				Seed:         1,
			}
			cfg.Hier.LLC.Policy = pol
			b.ReportAllocs()
			var contention float64
			for i := 0; i < b.N; i++ {
				r, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				contention = r.ContentionRate
			}
			b.ReportMetric(contention, "contention-rate")
		})
	}
}

// BenchmarkAblationMLP sweeps the core model's overlap factor — the
// interval-model ablation (DESIGN.md ★): contention sensitivity should be
// a property of the cache model, not of the chosen MLP.
func BenchmarkAblationMLP(b *testing.B) {
	for _, mlp := range []int{1, 2, 4, 8} {
		b.Run(string(rune('0'+mlp)), func(b *testing.B) {
			cfg := sim.Config{
				Workload:     "433.milc",
				Mode:         sim.PInTE,
				PInduce:      0.5,
				WarmupInstrs: 20_000,
				ROIInstrs:    100_000,
				SampleEvery:  100_000,
				Seed:         1,
			}
			cfg.CPU.MLP = mlp
			var ipc float64
			for i := 0; i < b.N; i++ {
				r, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				ipc = r.IPC
			}
			b.ReportMetric(ipc, "ipc")
		})
	}
}

// BenchmarkAblationSeeds reruns one PInTE configuration across engine
// seeds — the determinism/stability ablation (DESIGN.md ★). The reported
// metric is the spread of IPC across seeds within the iteration.
func BenchmarkAblationSeeds(b *testing.B) {
	b.ReportAllocs()
	var spread float64
	for i := 0; i < b.N; i++ {
		var lo, hi float64
		for s := uint64(1); s <= 4; s++ {
			r, err := sim.Run(sim.Config{
				Workload:     "450.soplex",
				Mode:         sim.PInTE,
				PInduce:      0.3,
				WarmupInstrs: 20_000,
				ROIInstrs:    80_000,
				SampleEvery:  80_000,
				Seed:         1,
				EngineSeed:   s,
			})
			if err != nil {
				b.Fatal(err)
			}
			if lo == 0 || r.IPC < lo {
				lo = r.IPC
			}
			if r.IPC > hi {
				hi = r.IPC
			}
		}
		spread = (hi - lo) / lo
	}
	b.ReportMetric(spread, "ipc-spread")
}

// BenchmarkSweepReplay quantifies the campaign-level record/replay cache
// (internal/replay): a 12-point single-workload P_Induce sweep run
// through the orchestrator with the stream cache off (every run
// regenerates its trace) versus on (the stream is recorded once and
// replayed for the other eleven points). The CacheOn case includes the
// one-time recording cost, so the ratio is the honest end-to-end
// campaign speedup.
func BenchmarkSweepReplay(b *testing.B) {
	sweepCfgs := func() []sim.Config {
		pts := []float64{0.005, 0.01, 0.025, 0.05, 0.075, 0.10,
			0.20, 0.30, 0.50, 0.70, 0.90, 1.0}
		cfgs := make([]sim.Config, 0, len(pts))
		for _, p := range pts {
			cfgs = append(cfgs, sim.Config{
				Workload:     "453.povray",
				Mode:         sim.PInTE,
				PInduce:      p,
				WarmupInstrs: 20_000,
				ROIInstrs:    500_000,
				SampleEvery:  500_000,
				Seed:         1,
			})
		}
		return cfgs
	}
	run := func(b *testing.B, streams trace.SourceProvider) {
		b.Helper()
		orc := runner.New(runner.Options{Workers: 1, Streams: streams})
		out, err := orc.RunAll(context.Background(), sweepCfgs())
		if err != nil {
			b.Fatal(err)
		}
		if hard := out.HardFailures(); len(hard) > 0 {
			b.Fatal(hard[0])
		}
	}
	b.Run("CacheOff", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			run(b, nil)
		}
	})
	b.Run("CacheOn", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// A fresh cache per iteration keeps the one-time recording
			// cost inside the measurement, as a real campaign pays it.
			run(b, replay.NewCache(512<<20))
		}
	})
}

// BenchmarkSweepFanout measures the one-decode fan-out executor on the
// same 12-point sweep as BenchmarkSweepReplay: the points share a
// (workload, seed) stream, so the fan phase decodes each columnar chunk
// once and advances all twelve simulators in lockstep. Compare against
// BenchmarkSweepReplay/CacheOn in the recorded baseline — same sweep,
// same stream cache, sequential execution — for the executor's own
// contribution. Every iteration checks the decode-sharing invariant via
// the fan-out telemetry: one group, twelve points, one decode pass.
func BenchmarkSweepFanout(b *testing.B) {
	pts := []float64{0.005, 0.01, 0.025, 0.05, 0.075, 0.10,
		0.20, 0.30, 0.50, 0.70, 0.90, 1.0}
	cfgs := make([]sim.Config, 0, len(pts))
	for _, p := range pts {
		cfgs = append(cfgs, sim.Config{
			Workload:     "453.povray",
			Mode:         sim.PInTE,
			PInduce:      p,
			WarmupInstrs: 20_000,
			ROIInstrs:    500_000,
			SampleEvery:  500_000,
			Seed:         1,
		})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		before := telemetry.FanoutSnapshot()
		// A fresh cache per iteration keeps the one-time recording
		// cost inside the measurement, as a real campaign pays it.
		orc := runner.New(runner.Options{
			Workers: 1, Streams: replay.NewCache(512 << 20), Fanout: true,
		})
		out, err := orc.RunAll(context.Background(), cfgs)
		if err != nil {
			b.Fatal(err)
		}
		if hard := out.HardFailures(); len(hard) > 0 {
			b.Fatal(hard[0])
		}
		after := telemetry.FanoutSnapshot()
		if g, d := after["groups_formed"]-before["groups_formed"],
			after["decode_passes"]-before["decode_passes"]; g != 1 || d != 1 {
			b.Fatalf("decode sharing broken: %d groups, %d decode passes (want 1 and 1)", g, d)
		}
		if p := after["points_fanned"] - before["points_fanned"]; p != int64(len(cfgs)) {
			b.Fatalf("only %d of %d points fanned", p, len(cfgs))
		}
	}
}

// BenchmarkSweepWarmRestart measures the persistent result store's
// restart economics on the same 12-point sweep as BenchmarkSweepReplay:
// Cold runs the sweep against an empty store (and pays the store's
// append/fsync tax on every completion); Warm reopens the now-populated
// store directory from scratch — a different process start, cold OS
// caches for the index rebuild — and reruns the identical campaign,
// which must be served entirely from the store with zero simulations
// and byte-identical results. The Warm/Cold ratio is the headline
// never-simulate-the-same-config-twice speedup (target ≥10×).
func BenchmarkSweepWarmRestart(b *testing.B) {
	pts := []float64{0.005, 0.01, 0.025, 0.05, 0.075, 0.10,
		0.20, 0.30, 0.50, 0.70, 0.90, 1.0}
	cfgs := make([]sim.Config, 0, len(pts))
	for _, p := range pts {
		cfgs = append(cfgs, sim.Config{
			Workload:     "453.povray",
			Mode:         sim.PInTE,
			PInduce:      p,
			WarmupInstrs: 20_000,
			ROIInstrs:    500_000,
			SampleEvery:  500_000,
			Seed:         1,
		})
	}
	sweep := func(b *testing.B, dir string) *runner.Outcome {
		b.Helper()
		st, err := store.Open(store.Options{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		orc := runner.New(runner.Options{Workers: 1, Store: st})
		out, err := orc.RunAll(context.Background(), cfgs)
		if err != nil {
			b.Fatal(err)
		}
		if hard := out.HardFailures(); len(hard) > 0 {
			b.Fatal(hard[0])
		}
		return out
	}
	fingerprints := func(b *testing.B, out *runner.Outcome) []string {
		b.Helper()
		fps := make([]string, len(out.Results))
		for i, r := range out.Results {
			rr := *r
			rr.WallTime = 0
			j, err := json.Marshal(&rr)
			if err != nil {
				b.Fatal(err)
			}
			fps[i] = string(j)
		}
		return fps
	}
	b.Run("Cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := sweep(b, b.TempDir())
			if out.Ran != len(cfgs) || out.FromStore != 0 {
				b.Fatalf("cold sweep ran %d, served %d from store (want %d and 0)",
					out.Ran, out.FromStore, len(cfgs))
			}
		}
	})
	b.Run("Warm", func(b *testing.B) {
		dir := b.TempDir()
		cold := sweep(b, dir)
		want := fingerprints(b, cold)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out := sweep(b, dir) // reopen from disk: index rebuild included
			if out.Ran != 0 || out.FromStore != len(cfgs) {
				b.Fatalf("warm sweep ran %d, served %d from store (want 0 and %d)",
					out.Ran, out.FromStore, len(cfgs))
			}
			b.StopTimer()
			for j, fp := range fingerprints(b, out) {
				if fp != want[j] {
					b.Fatalf("warm result %d is not byte-identical to the cold run", j)
				}
			}
			b.StartTimer()
		}
	})
}

// Benches for this reproduction's beyond-the-paper experiments.

func BenchmarkExt(b *testing.B)          { benchExperiment(b, "ext") }
func BenchmarkCapacity(b *testing.B)     { benchExperiment(b, "capacity") }
func BenchmarkPartitioning(b *testing.B) { benchExperiment(b, "partitioning") }
