package pinte

import (
	"math"
	"testing"
)

func TestCalibrateReachesTarget(t *testing.T) {
	e := tinyExp(Experiment{Workload: "433.milc"})
	const target = 0.20
	p, r, err := Calibrate(e, target, CalibrateOptions{Tolerance: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p > 1 {
		t.Fatalf("calibrated P_Induce %v out of range", p)
	}
	if math.Abs(r.ContentionRate-target) > 0.03 {
		t.Fatalf("calibrated contention %v, target %v", r.ContentionRate, target)
	}
}

func TestCalibrateUnreachableCeiling(t *testing.T) {
	// A core-bound workload cannot reach 50% contention: its LLC
	// accesses are too rare to observe thefts against it.
	e := tinyExp(Experiment{Workload: "453.povray"})
	p, r, err := Calibrate(e, 0.5, CalibrateOptions{})
	if err == nil {
		t.Fatalf("expected ceiling error, got p=%v rate=%v", p, r.ContentionRate)
	}
	if r == nil || p != 1 {
		t.Fatal("ceiling error should carry the P_Induce=1 run")
	}
}

func TestCalibrateRejectsBadTarget(t *testing.T) {
	for _, target := range []float64{-0.1, 1.0, 2.0} {
		if _, _, err := Calibrate(tinyExp(Experiment{Workload: "433.milc"}), target, CalibrateOptions{}); err == nil {
			t.Errorf("target %v accepted", target)
		}
	}
}

func TestCalibrateZeroTarget(t *testing.T) {
	e := tinyExp(Experiment{Workload: "433.milc"})
	p, r, err := Calibrate(e, 0, CalibrateOptions{Tolerance: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if r.ContentionRate > 0.02 {
		t.Fatalf("calibrated to %v for a zero target (p=%v)", r.ContentionRate, p)
	}
}

func TestSecondTraceMultipleAdversaries(t *testing.T) {
	iso, err := Run(tinyExp(Experiment{Workload: "433.milc"}))
	if err != nil {
		t.Fatal(err)
	}
	one, err := Run(tinyExp(Experiment{
		Workload: "433.milc", Mode: ModeSecondTrace, Adversary: "470.lbm",
	}))
	if err != nil {
		t.Fatal(err)
	}
	three, err := Run(tinyExp(Experiment{
		Workload:    "433.milc",
		Mode:        ModeSecondTrace,
		Adversary:   "470.lbm",
		Adversaries: []string{"450.soplex", "619.lbm"},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if three.ContentionRate <= one.ContentionRate {
		t.Fatalf("more adversaries did not raise contention: %v vs %v",
			three.ContentionRate, one.ContentionRate)
	}
	if three.IPC >= iso.IPC {
		t.Fatal("four-way co-run did not hurt IPC")
	}
}
