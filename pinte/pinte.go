// Package pinte is the public API of this PInTE reproduction. It runs
// workloads on the bundled trace-driven cache/CPU simulator in the
// paper's three contention contexts — isolation, PInTE-induced contention
// at a configurable probability, and 2nd-Trace multi-programmed contention
// — and exposes the analysis helpers the paper's evaluation uses
// (weighted IPC, KL divergence, contention-sensitivity classification).
//
// A minimal session:
//
//	iso, _ := pinte.Run(pinte.Experiment{Workload: "429.mcf"})
//	con, _ := pinte.Run(pinte.Experiment{
//		Workload: "429.mcf", Mode: pinte.ModePInTE, PInduce: 0.3,
//	})
//	fmt.Println(con.WeightedIPC(iso.IPC))
package pinte

import (
	"fmt"
	"time"

	"repro/internal/c2afe"
	"repro/internal/cache"
	pcore "repro/internal/core"
	"repro/internal/dram"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Mode selects the source of contention.
type Mode int

const (
	// ModeIsolation runs the workload alone (the baseline context).
	ModeIsolation Mode = iota
	// ModePInTE attaches the probabilistic theft-injection engine to
	// the LLC.
	ModePInTE
	// ModeSecondTrace co-runs an adversary workload on a second core
	// sharing the LLC and DRAM.
	ModeSecondTrace
)

// Machine holds the optional machine-model overrides most studies need;
// zero values select the paper's Skylake-like default (§III-A).
type Machine struct {
	// LLCPolicy is the LLC replacement policy: "lru" (default),
	// "plru", "nmru" or "rrip".
	LLCPolicy string
	// Inclusion is the LLC inclusion mode: "no" (default), "in", "ex".
	Inclusion string
	// Prefetch is the paper's 3-character permutation over
	// {L1I, L1D, L2}: "000" (default), "NN0", "NNN", "NNI".
	Prefetch string
	// Branch is the predictor: "bimodal", "gshare", "perceptron" or
	// "hashed-perceptron" (default).
	Branch string
	// LLCSizeBytes overrides the 4MB LLC (e.g. the Fig 10 11MB proxy).
	LLCSizeBytes int
	// HalvedDRAM halves memory resources (the Fig 10 proxy system).
	HalvedDRAM bool
	// Partitioning enables a dynamic LLC partitioning controller:
	// "ucp" (utility-based, UMON shadow tags) or "theft" (CASHT-style,
	// driven by theft counters). "" leaves the LLC fully shared.
	Partitioning string
}

// Experiment describes one simulation.
type Experiment struct {
	// Workload is a benchmark preset name; see Workloads.
	Workload string
	// Adversary is the co-runner preset (ModeSecondTrace only);
	// Adversaries adds further co-runners on additional cores.
	Adversary   string
	Adversaries []string
	Mode        Mode
	// PInduce is the injection probability in [0, 1] (ModePInTE only).
	PInduce float64
	Machine Machine
	// Warmup, ROI and SampleEvery are instruction budgets for the
	// warm-up phase, measured region, and sampling interval; zero
	// selects 200k / 1M / 50k (the paper's 500M / 500M / 10M scaled).
	Warmup, ROI, SampleEvery uint64
	// Seed makes the run reproducible; equal experiments with equal
	// seeds produce identical results.
	Seed uint64
	// Extensions enables the §IV-E2b future-work mechanisms.
	Extensions Extensions
}

// Extensions configures the beyond-the-paper injection mechanisms the
// paper's limitation analysis sketches (§IV-E2b). Zero values disable
// both; baseline results are unaffected.
type Extensions struct {
	// IndependentPeriod, in instructions, decouples PInTE from LLC
	// accesses: the injection flow runs on this schedule, sweeping LLC
	// sets round-robin (remedy for core-bound workloads; PInTE mode
	// only).
	IndependentPeriod uint64
	// DRAMContentionProb and DRAMContentionPenalty inject extra memory
	// latency with the given probability, up to the given cycle count
	// per access (remedy for DRAM-bound workloads).
	DRAMContentionProb    float64
	DRAMContentionPenalty uint64
}

// Sample is one run-time measurement interval (the paper's per-10M
// instruction samples).
type Sample struct {
	Instrs           uint64
	IPC              float64
	MissRate         float64
	AMAT             float64
	InterferenceRate float64
	TheftRate        float64
	OccupancyFrac    float64
}

// Result reports one experiment's region-of-interest measurements.
type Result struct {
	Workload string
	Mode     Mode
	PInduce  float64

	Instrs, Cycles uint64
	IPC            float64
	// MissRate is the workload's LLC miss ratio.
	MissRate float64
	// AMAT is average memory access time in cycles over demand data
	// accesses.
	AMAT float64
	// ContentionRate is thefts experienced per LLC access — the
	// paper's contention rate. Under the access-independent extension
	// it can exceed 1 (injections are decoupled from accesses).
	ContentionRate float64
	// InducedThefts counts valid blocks the PInTE engine invalidated
	// (ModePInTE only).
	InducedThefts  uint64
	BranchAccuracy float64
	// OccupancyFrac is the mean fraction of the LLC the workload held.
	OccupancyFrac float64

	// ReuseHist is the LLC hit-position (reuse) histogram.
	ReuseHist []uint64
	Samples   []Sample

	WallTime time.Duration
}

// WeightedIPC is Eq 1: this result's IPC over an isolation IPC.
func (r *Result) WeightedIPC(isolationIPC float64) float64 {
	return stats.WeightedIPC(r.IPC, isolationIPC)
}

// Run executes one experiment.
func Run(e Experiment) (*Result, error) {
	cfg, err := e.toSim()
	if err != nil {
		return nil, err
	}
	sr, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	return fromSim(e, sr), nil
}

func (e Experiment) toSim() (sim.Config, error) {
	cfg := sim.Config{
		Workload:              e.Workload,
		Adversary:             e.Adversary,
		Adversaries:           e.Adversaries,
		PInduce:               e.PInduce,
		WarmupInstrs:          e.Warmup,
		ROIInstrs:             e.ROI,
		SampleEvery:           e.SampleEvery,
		Seed:                  e.Seed,
		Branch:                e.Machine.Branch,
		IndependentPeriod:     e.Extensions.IndependentPeriod,
		DRAMContentionProb:    e.Extensions.DRAMContentionProb,
		DRAMContentionPenalty: e.Extensions.DRAMContentionPenalty,
	}
	switch e.Mode {
	case ModeIsolation:
		cfg.Mode = sim.Isolation
	case ModePInTE:
		cfg.Mode = sim.PInTE
	case ModeSecondTrace:
		cfg.Mode = sim.SecondTrace
		if e.Adversary == "" {
			return cfg, fmt.Errorf("pinte: ModeSecondTrace requires an Adversary")
		}
	default:
		return cfg, fmt.Errorf("pinte: unknown mode %d", e.Mode)
	}
	m := e.Machine
	if m.Inclusion != "" {
		incl, err := cache.ParseInclusion(m.Inclusion)
		if err != nil {
			return cfg, err
		}
		cfg.Hier.Inclusion = incl
	}
	cfg.Hier.Prefetch = m.Prefetch
	cfg.Hier.LLC.Policy = m.LLCPolicy
	cfg.Partitioning = m.Partitioning
	if m.LLCSizeBytes != 0 {
		cfg.Hier.LLC.SizeBytes = m.LLCSizeBytes
		cfg.Hier.LLC.Ways = 16
		cfg.Hier.LLC.HitLatency = 30
	}
	if m.HalvedDRAM {
		d := dram.Halved()
		cfg.DRAM = &d
	}
	return cfg, nil
}

func fromSim(e Experiment, sr *sim.Result) *Result {
	r := &Result{
		Workload:       e.Workload,
		Mode:           e.Mode,
		PInduce:        e.PInduce,
		Instrs:         sr.Instrs,
		Cycles:         sr.Cycles,
		IPC:            sr.IPC,
		MissRate:       sr.MissRate,
		AMAT:           sr.AMAT,
		ContentionRate: sr.ContentionRate,
		BranchAccuracy: sr.BranchAccuracy,
		OccupancyFrac:  sr.OccupancyFrac,
		ReuseHist:      sr.ReuseHist,
		WallTime:       sr.WallTime,
	}
	if sr.Engine != nil {
		r.InducedThefts = sr.Engine.Invalidations
	}
	for _, s := range sr.Samples {
		r.Samples = append(r.Samples, Sample{
			Instrs:           s.Instrs,
			IPC:              s.IPC,
			MissRate:         s.MissRate,
			AMAT:             s.AMAT,
			InterferenceRate: s.InterferenceRate,
			TheftRate:        s.TheftRate,
			OccupancyFrac:    s.OccupancyFrac,
		})
	}
	return r
}

// Workloads returns all bundled benchmark preset names.
func Workloads() []string { return trace.Names() }

// WorkloadsBySuite returns preset names for "SPEC2006" or "SPEC2017".
func WorkloadsBySuite(suite string) []string { return trace.NamesBySuite(suite) }

// DefaultSweep returns the paper's 12-point P_Induce configuration set.
func DefaultSweep() []float64 { return pcore.DefaultSweep() }

// KLDivergenceBits is Eq 5: the Kullback–Leibler divergence between two
// histograms in bits (p observed, q reference).
func KLDivergenceBits(p, q []float64) float64 {
	return stats.KLDivergenceBits(p, q, stats.KLOptions{})
}

// Sensitivity classifies a set of weighted-IPC samples at a tolerable
// performance loss (use 0 for the paper's 5% default) and returns the
// class name ("low", "mixed", "high") plus the sensitive-curve
// population in [0, 1].
func Sensitivity(weightedIPC []float64, tpl float64) (string, float64) {
	if tpl == 0 {
		tpl = c2afe.DefaultTPL
	}
	class, scp := c2afe.Classify(weightedIPC, tpl)
	return class.String(), scp
}
