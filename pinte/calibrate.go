package pinte

import (
	"fmt"
	"math"
)

// CalibrateOptions tunes Calibrate's search.
type CalibrateOptions struct {
	// Tolerance is the acceptable |observed − target| contention-rate
	// gap; 0 means 0.01 (one percentage point).
	Tolerance float64
	// MaxRuns bounds the number of simulations; 0 means 12.
	MaxRuns int
}

// Calibrate finds the P_Induce that makes e's workload experience
// approximately the target contention rate (thefts experienced per LLC
// access, in [0, 1)).
//
// P_Induce is only a proxy for the contention a workload actually sees
// (§IV-C): the observed rate depends on the workload's access pattern and
// residency. The observed rate is monotone in P_Induce, so a bisection
// over [0, 1] converges quickly; Calibrate returns the chosen probability
// and the result of the final run at that setting.
//
// Workloads that barely touch the LLC cannot reach high contention rates
// at any probability; when even P_Induce = 1 falls short of the target,
// Calibrate returns that run with an error describing the reachable
// ceiling.
func Calibrate(e Experiment, target float64, opts CalibrateOptions) (float64, *Result, error) {
	if target < 0 || target >= 1 {
		return 0, nil, fmt.Errorf("pinte: calibration target %v outside [0, 1)", target)
	}
	tol := opts.Tolerance
	if tol == 0 {
		tol = 0.01
	}
	maxRuns := opts.MaxRuns
	if maxRuns == 0 {
		maxRuns = 12
	}
	e.Mode = ModePInTE

	runAt := func(p float64) (*Result, error) {
		e.PInduce = p
		return Run(e)
	}

	// Probe the ceiling first: if even full-rate injection cannot reach
	// the target, report the ceiling rather than bisecting uselessly.
	hiRes, err := runAt(1)
	if err != nil {
		return 0, nil, err
	}
	if hiRes.ContentionRate+tol < target {
		return 1, hiRes, fmt.Errorf(
			"pinte: workload %s reaches at most %.3f contention at P_Induce=1, below target %.3f",
			e.Workload, hiRes.ContentionRate, target)
	}
	if math.Abs(hiRes.ContentionRate-target) <= tol {
		return 1, hiRes, nil
	}

	lo, hi := 0.0, 1.0
	best, bestRes := 1.0, hiRes
	bestGap := math.Abs(hiRes.ContentionRate - target)
	for run := 1; run < maxRuns; run++ {
		mid := (lo + hi) / 2
		r, err := runAt(mid)
		if err != nil {
			return 0, nil, err
		}
		gap := math.Abs(r.ContentionRate - target)
		if gap < bestGap {
			best, bestRes, bestGap = mid, r, gap
		}
		if gap <= tol {
			return mid, r, nil
		}
		if r.ContentionRate < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return best, bestRes, nil
}
