package pinte

import (
	"testing"
)

func tinyExp(e Experiment) Experiment {
	e.Warmup = 30_000
	e.ROI = 80_000
	e.SampleEvery = 10_000
	if e.Seed == 0 {
		e.Seed = 1
	}
	return e
}

func TestRunIsolationAndPInTE(t *testing.T) {
	iso, err := Run(tinyExp(Experiment{Workload: "450.soplex"}))
	if err != nil {
		t.Fatal(err)
	}
	if iso.IPC <= 0 {
		t.Fatal("zero IPC")
	}
	con, err := Run(tinyExp(Experiment{
		Workload: "450.soplex", Mode: ModePInTE, PInduce: 0.5,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if con.ContentionRate == 0 {
		t.Fatal("no contention induced")
	}
	if w := con.WeightedIPC(iso.IPC); w >= 1 {
		t.Fatalf("weighted IPC %v, want < 1 under contention", w)
	}
	if len(con.Samples) == 0 || len(con.ReuseHist) == 0 {
		t.Fatal("samples or reuse histogram missing")
	}
}

func TestRunSecondTraceValidation(t *testing.T) {
	if _, err := Run(tinyExp(Experiment{Workload: "433.milc", Mode: ModeSecondTrace})); err == nil {
		t.Fatal("missing adversary accepted")
	}
	if _, err := Run(tinyExp(Experiment{Workload: "433.milc", Mode: Mode(42)})); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

func TestMachineKnobs(t *testing.T) {
	r, err := Run(tinyExp(Experiment{
		Workload: "433.milc",
		Mode:     ModePInTE,
		PInduce:  0.3,
		Machine: Machine{
			LLCPolicy: "rrip",
			Inclusion: "ex",
			Prefetch:  "NNI",
			Branch:    "gshare",
		},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if r.ContentionRate == 0 {
		t.Fatal("engine inert with custom machine")
	}
	if _, err := Run(tinyExp(Experiment{
		Workload: "433.milc",
		Machine:  Machine{Inclusion: "bogus"},
	})); err == nil {
		t.Fatal("bad inclusion accepted")
	}
}

func TestWorkloadsLists(t *testing.T) {
	if len(Workloads()) != 49 {
		t.Fatalf("Workloads() = %d names, want 49", len(Workloads()))
	}
	if len(WorkloadsBySuite("SPEC2017")) != 20 {
		t.Fatal("suite filter broken")
	}
}

func TestDefaultSweep(t *testing.T) {
	if len(DefaultSweep()) != 12 {
		t.Fatal("sweep should have the paper's 12 points")
	}
}

func TestKLAndSensitivityHelpers(t *testing.T) {
	if d := KLDivergenceBits([]float64{1, 2, 3}, []float64{1, 2, 3}); d != 0 {
		t.Errorf("KL of identical = %v", d)
	}
	class, scp := Sensitivity([]float64{1, 1, 1, 1}, 0)
	if class != "low" || scp != 0 {
		t.Errorf("flat curve classified (%s, %v)", class, scp)
	}
	class, scp = Sensitivity([]float64{0.5, 0.6, 0.7, 0.4}, 0)
	if class != "high" || scp != 1 {
		t.Errorf("collapsed curve classified (%s, %v)", class, scp)
	}
}

func TestLLCSizeOverrideAccepted(t *testing.T) {
	// The size override must build a valid machine with the remaining
	// levels defaulted (see internal/sim for the capacity-effect test).
	r, err := Run(tinyExp(Experiment{
		Workload: "433.milc", Seed: 3,
		Machine: Machine{LLCSizeBytes: 16 << 20},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 {
		t.Fatal("override run produced no progress")
	}
	if len(r.ReuseHist) != 16 {
		t.Fatalf("overridden LLC reports %d ways", len(r.ReuseHist))
	}
}
