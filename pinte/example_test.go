package pinte_test

import (
	"fmt"

	"repro/pinte"
)

// Example_basic runs a workload in isolation and under PInTE-induced
// contention, then compares performance via weighted IPC (Eq 1).
func Example_basic() {
	iso, err := pinte.Run(pinte.Experiment{
		Workload: "450.soplex",
		Warmup:   50_000, ROI: 100_000,
		Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	con, err := pinte.Run(pinte.Experiment{
		Workload: "450.soplex",
		Mode:     pinte.ModePInTE,
		PInduce:  0.5,
		Warmup:   50_000, ROI: 100_000,
		Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	if con.WeightedIPC(iso.IPC) < 1 {
		fmt.Println("contention slowed the workload")
	}
	// Output: contention slowed the workload
}

// Example_sweep builds a contention curve over the paper's 12 P_Induce
// configurations and classifies the workload's sensitivity at a 5% TPL.
func Example_sweep() {
	iso, err := pinte.Run(pinte.Experiment{
		Workload: "453.povray",
		Warmup:   30_000, ROI: 60_000,
		Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	var weighted []float64
	for _, p := range pinte.DefaultSweep()[:4] {
		r, err := pinte.Run(pinte.Experiment{
			Workload: "453.povray",
			Mode:     pinte.ModePInTE,
			PInduce:  p,
			Warmup:   30_000, ROI: 60_000,
			Seed: 1,
		})
		if err != nil {
			panic(err)
		}
		weighted = append(weighted, r.WeightedIPC(iso.IPC))
	}
	class, _ := pinte.Sensitivity(weighted, 0)
	fmt.Println("classification:", class)
	// Output: classification: low
}

// Example_calibrate finds the injection probability that produces a
// chosen contention rate for a workload.
func Example_calibrate() {
	p, r, err := pinte.Calibrate(pinte.Experiment{
		Workload: "433.milc",
		Warmup:   30_000, ROI: 80_000,
		Seed: 1,
	}, 0.25, pinte.CalibrateOptions{Tolerance: 0.05})
	if err != nil {
		panic(err)
	}
	if p > 0 && r.ContentionRate > 0.15 {
		fmt.Println("calibrated")
	}
	// Output: calibrated
}
